// Stress and determinism tests for the simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "topology/grid5000.hpp"

namespace gridsim {
namespace {

TEST(EngineStress, HundredThousandEventsInOrder) {
  Simulation sim;
  Rng rng(42);
  SimTime last_seen = -1;
  bool ordered = true;
  for (int i = 0; i < 100'000; ++i) {
    const SimTime t = rng.uniform_int(0, 1'000'000);
    sim.at(t, [&last_seen, &ordered, &sim] {
      if (sim.now() < last_seen) ordered = false;
      last_seen = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.events_processed(), 100'000u);
}

Task<void> chatter(Simulation& sim, Mailbox<int>* in, Mailbox<int>* out,
                   int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int v = co_await in->pop();
    co_await sim.delay(1);
    out->push(v + 1);
  }
}

TEST(EngineStress, FiveThousandCoroutinesPingPong) {
  Simulation sim;
  constexpr int kPairs = 2'500;
  std::vector<std::unique_ptr<Mailbox<int>>> boxes;
  for (int i = 0; i < 2 * kPairs; ++i)
    boxes.push_back(std::make_unique<Mailbox<int>>(sim));
  for (int i = 0; i < kPairs; ++i) {
    sim.spawn(chatter(sim, boxes[2 * size_t(i)].get(),
                      boxes[2 * size_t(i) + 1].get(), 10));
    sim.spawn(chatter(sim, boxes[2 * size_t(i) + 1].get(),
                      boxes[2 * size_t(i)].get(), 10));
    boxes[2 * size_t(i)]->push(0);
  }
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0);
}

/// Full MPI scenario run twice must produce byte-identical results.
struct RunSignature {
  SimTime end;
  std::uint64_t events;
  std::uint64_t msgs;
  double bytes;
  bool operator==(const RunSignature& o) const {
    return end == o.end && events == o.events && msgs == o.msgs &&
           bytes == o.bytes;
  }
};

Task<void> stress_rank(mpi::Rank& r) {
  // A mix of everything: wildcard receives, nonblocking ops, collectives.
  const int right = (r.rank() + 1) % r.size();
  const int left = (r.rank() - 1 + r.size()) % r.size();
  for (int i = 0; i < 5; ++i) {
    mpi::Request rq = r.irecv(left, 7);
    co_await r.send(right, 1000.0 * (i + 1), 7);
    (void)co_await r.wait(rq);
    co_await coll::barrier(r);
  }
}

RunSignature run_once() {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(4));
  const profiles::ExperimentConfig cfg =
      profiles::experiment(profiles::gridmpi())
          .tuning(profiles::TuningLevel::kTcpTuned);
  mpi::Job job(grid, mpi::block_placement(grid, 8), cfg.profile, cfg.kernel);
  job.launch([](mpi::Rank& r) { return stress_rank(r); });
  const SimTime end = sim.run();
  return RunSignature{end, sim.events_processed(),
                      job.traffic().p2p_messages, job.traffic().p2p_bytes};
}

TEST(EngineStress, FullScenarioBitReproducible) {
  const RunSignature a = run_once();
  const RunSignature b = run_once();
  EXPECT_TRUE(a == b);
}

TEST(EngineStress, SpawnInsideEventAtSameTimestamp) {
  Simulation sim;
  std::vector<int> order;
  sim.at(100, [&] {
    order.push_back(1);
    sim.spawn([](std::vector<int>* ord) -> Task<void> {
      ord->push_back(2);
      co_return;
    }(&order));
    order.push_back(3);  // runs before the spawned task (FIFO)
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(EngineStress, SpawnEmptyTaskThrows) {
  Simulation sim;
  EXPECT_THROW(sim.spawn(Task<void>{}), std::invalid_argument);
}

// Pins the exact pop order of the event queue under a stress mix: 20k
// events at hash-random timestamps (every third with an oversized capture
// that takes the engine's out-of-line payload path), plus one event that
// fans out 200 same-timestamp FIFO-tied events. The digest value was
// computed on the std::function/binary-heap engine this queue replaced;
// it must never change — FIFO tie-breaking and global event order are part
// of the determinism contract (docs/architecture.md).
TEST(EngineStress, EventOrderDigestPinnedAcrossEngineRewrites) {
  Simulation sim;
  Rng rng(2024);
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
  auto fold = [&digest](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xff;
      digest *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  for (int i = 0; i < 20'000; ++i) {
    const SimTime t = rng.uniform_int(0, 1'000'000);
    const auto id = static_cast<std::uint64_t>(i);
    if (i % 3 == 0) {
      // Oversized capture: out-of-line payload in any engine variant.
      std::uint64_t pad[6] = {rng.next(), rng.next(), rng.next(),
                              rng.next(), rng.next(), rng.next()};
      sim.at(t, [&fold, &sim, id, pad] {
        fold(id);
        fold(static_cast<std::uint64_t>(sim.now()));
        fold(pad[0] + pad[5]);
      });
    } else {
      sim.at(t, [&fold, &sim, id] {
        fold(id);
        fold(static_cast<std::uint64_t>(sim.now()));
      });
    }
  }
  // Events scheduling events, including FIFO ties at one timestamp.
  sim.at(500'000, [&sim, &fold] {
    for (int k = 0; k < 100; ++k) {
      const auto kk = static_cast<std::uint64_t>(k);
      sim.post([&fold, kk] { fold(0xABC000 + kk); });
      sim.after(k, [&fold, kk] { fold(0xDEF000 + kk); });
    }
  });
  sim.run();
  EXPECT_EQ(digest, 0x46eedc3e83bfd243ULL);
  EXPECT_EQ(sim.events_processed(), 20'201u);
}

}  // namespace
}  // namespace gridsim
