// Tests for the TCP channel model: window arithmetic, buffer back-pressure,
// congestion dynamics, and the paper's headline throughput regimes.
#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::tcp {
namespace {

using namespace gridsim::literals;
using net::HostId;

// A two-host path mirroring the Rennes--Nancy WAN: 1 GbE goodput, 5.8 ms
// one-way latency, 1 MB bottleneck queue.
struct WanPair {
  Simulation sim;
  net::Network network{sim};
  HostId a, b;
  WanPair(SimTime one_way = 5800_us, double queue = 1e6) {
    a = network.add_host("a");
    b = network.add_host("b");
    const auto l =
        network.add_link("wan", ethernet_goodput(1e9), one_way, queue);
    network.add_route(a, b, {l});
  }
};

// Cluster-like pair: 35 us one-way.
struct LanPair : WanPair {
  LanPair() : WanPair(35_us, 128e3) {}
};

TEST(Tcp, EthernetGoodput) {
  // 1 GbE carries ~941 Mbps of payload.
  EXPECT_NEAR(ethernet_goodput(1e9) * 8 / 1e6, 941.5, 0.5);
}

TEST(Tcp, EffectiveBufferRules) {
  WanPair w;
  KernelTunables k;  // defaults
  {
    // Auto-tuning: bound by tcp_*mem[2].
    TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
    EXPECT_DOUBLE_EQ(ch.effective_sndbuf(), k.tcp_wmem[2]);
    EXPECT_DOUBLE_EQ(ch.effective_rcvbuf(), k.tcp_rmem[2]);
  }
  {
    // setsockopt: clamped by the core max, overrides auto-tuning.
    SocketOptions o;
    o.sndbuf = o.rcvbuf = 4e6;
    TcpChannel ch(w.network, w.a, w.b, k, k, o);
    EXPECT_DOUBLE_EQ(ch.effective_sndbuf(), k.wmem_max);  // clamped: 131071
    EXPECT_DOUBLE_EQ(ch.effective_rcvbuf(), k.rmem_max);
  }
  {
    // GridMPI style: locked to the kernel initial ("middle") value.
    SocketOptions o;
    o.lock_buffers_to_initial = true;
    TcpChannel ch(w.network, w.a, w.b, k, k, o);
    EXPECT_DOUBLE_EQ(ch.effective_sndbuf(), k.tcp_wmem[1]);
    EXPECT_DOUBLE_EQ(ch.effective_rcvbuf(), k.tcp_rmem[1]);
  }
  {
    // Tuned kernel + setsockopt 4MB (OpenMPI with MCA params).
    KernelTunables t = KernelTunables::grid_tuned();
    SocketOptions o;
    o.sndbuf = o.rcvbuf = 4 * 1024 * 1024;
    TcpChannel ch(w.network, w.a, w.b, t, t, o);
    EXPECT_DOUBLE_EQ(ch.effective_sndbuf(), 4 * 1024 * 1024);
  }
}

TEST(Tcp, WindowIsMinOfCwndAndBuffers) {
  WanPair w;
  KernelTunables k;
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  // Fresh connection: cwnd = 2 MSS is the binding term.
  EXPECT_DOUBLE_EQ(ch.window(), 2 * ch.params().mss);
  EXPECT_EQ(ch.rtt(), 2 * 5800_us);
}

TEST(Tcp, SmallMessageLatencyIsPropagation) {
  WanPair w;
  KernelTunables k;
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  SimTime delivered = -1;
  ch.send(1.0, nullptr, [&] { delivered = w.sim.now(); });
  w.sim.run_until(1_s);
  // 1 byte: transfer time negligible, delivery at one-way latency.
  EXPECT_GE(delivered, 5800_us);
  EXPECT_LE(delivered, 5810_us);
}

TEST(Tcp, FifoDeliveryOrder) {
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    ch.send(100e3, nullptr, [&order, i] { order.push_back(i); });
  w.sim.run_until(30_s);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Tcp, DefaultGridThroughputCollapses) {
  // The paper's Fig 3: with default kernel tunables on an 11.6 ms RTT path,
  // goodput is capped by the 174760-byte auto-tuning bound at ~120 Mbps.
  WanPair w;
  KernelTunables k;
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  SimTime done = -1;
  const double bytes = 64e6;
  ch.send(bytes, nullptr, [&] { done = w.sim.now(); });
  w.sim.run_until(60_s);
  ASSERT_GT(done, 0);
  const double mbps_measured = bytes * 8 / to_seconds(done) / 1e6;
  EXPECT_LT(mbps_measured, 122);
  EXPECT_GT(mbps_measured, 90);
  EXPECT_EQ(ch.loss_events(), 0);  // window never exceeds the path BDP
}

TEST(Tcp, TunedGridThroughputRecovers) {
  // Fig 6: with 4 MB buffers the same path sustains ~900 Mbps once the
  // window has ramped up.
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  SimTime done = -1;
  const double bytes = 512e6;  // long transfer so the ramp amortises
  ch.send(bytes, nullptr, [&] { done = w.sim.now(); });
  w.sim.run_until(120_s);
  ASSERT_GT(done, 0);
  const double mbps_measured = bytes * 8 / to_seconds(done) / 1e6;
  EXPECT_GT(mbps_measured, 700);
  EXPECT_GT(ch.loss_events(), 0);  // probing beyond the BDP now loses
}

TEST(Tcp, ClusterThroughputIsLineRateWithDefaults) {
  // Fig 5: on a 70 us RTT the default buffers dwarf the BDP.
  LanPair l;
  KernelTunables k;
  TcpChannel ch(l.network, l.a, l.b, k, k, SocketOptions{});
  SimTime done = -1;
  const double bytes = 64e6;
  ch.send(bytes, nullptr, [&] { done = l.sim.now(); });
  l.sim.run_until(10_s);
  ASSERT_GT(done, 0);
  const double mbps_measured = bytes * 8 / to_seconds(done) / 1e6;
  EXPECT_GT(mbps_measured, 850);
  EXPECT_LT(mbps_measured, 942);
}

TEST(Tcp, PacingConvergesFasterThanUnpaced) {
  // Fig 9 mechanism: the paced sender exits slow start without collapsing
  // to the initial window, so it reaches high throughput sooner.
  auto time_to_transfer = [](bool pacing) {
    WanPair w;
    KernelTunables k = KernelTunables::grid_tuned();
    SocketOptions o;
    o.pacing = pacing;
    TcpChannel ch(w.network, w.a, w.b, k, k, o);
    SimTime done = -1;
    ch.send(64e6, nullptr, [&] { done = w.sim.now(); });
    w.sim.run_until(120_s);
    return done;
  };
  const SimTime paced = time_to_transfer(true);
  const SimTime unpaced = time_to_transfer(false);
  ASSERT_GT(paced, 0);
  ASSERT_GT(unpaced, 0);
  EXPECT_LT(paced, unpaced);
}

TEST(Tcp, LockedInitialBuffersThrottle) {
  // GridMPI before raising tcp_*mem[1]: window pinned at 87380 B.
  WanPair w;
  KernelTunables k;
  SocketOptions o;
  o.lock_buffers_to_initial = true;
  TcpChannel ch(w.network, w.a, w.b, k, k, o);
  SimTime done = -1;
  const double bytes = 32e6;
  ch.send(bytes, nullptr, [&] { done = w.sim.now(); });
  w.sim.run_until(120_s);
  ASSERT_GT(done, 0);
  const double mbps_measured = bytes * 8 / to_seconds(done) / 1e6;
  EXPECT_LT(mbps_measured, 65);
  EXPECT_GT(mbps_measured, 40);
}

TEST(Tcp, SendBufferBackPressure) {
  // A 64 MB eager send into a 128 kB socket buffer must not "complete"
  // until nearly all bytes have drained.
  WanPair w;
  KernelTunables k;
  SocketOptions o;
  o.sndbuf = o.rcvbuf = 128 * 1024;
  TcpChannel ch(w.network, w.a, w.b, k, k, o);
  SimTime buffered = -1, delivered = -1;
  ch.send(64e6, [&] { buffered = w.sim.now(); },
          [&] { delivered = w.sim.now(); });
  w.sim.run_until(120_s);
  ASSERT_GT(buffered, 0);
  ASSERT_GT(delivered, 0);
  // Buffered only once (64 MB - 128 kB) have drained: essentially at the
  // end of the transfer.
  EXPECT_GT(buffered, delivered / 2);
  EXPECT_LE(buffered, delivered);
}

TEST(Tcp, SmallSendBuffersImmediately) {
  WanPair w;
  KernelTunables k;
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  SimTime buffered = -1;
  ch.send(1000, [&] { buffered = w.sim.now(); }, nullptr);
  w.sim.run_until(1_s);
  EXPECT_EQ(buffered, 0);  // fits in the empty socket buffer instantly
}

TEST(Tcp, QueuedSendsRespectBufferOccupancy) {
  WanPair w;
  KernelTunables k;
  SocketOptions o;
  o.sndbuf = o.rcvbuf = 100e3;
  TcpChannel ch(w.network, w.a, w.b, k, k, o);
  std::vector<SimTime> buffered(3, -1);
  for (int i = 0; i < 3; ++i)
    ch.send(60e3, [&buffered, i, &w] { buffered[static_cast<size_t>(i)] =
                                           w.sim.now(); },
            nullptr);
  w.sim.run_until(60_s);
  // First segment fits instantly; the second must wait for drain; the third
  // waits longer still.
  EXPECT_EQ(buffered[0], 0);
  EXPECT_GT(buffered[1], 0);
  EXPECT_GT(buffered[2], buffered[1]);
}

TEST(Tcp, CoroutineSendHelpers) {
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  SimTime t_buffered = -1, t_delivered = -1;
  auto prog = [](Simulation& sim, TcpChannel& c, SimTime& tb,
                 SimTime& td) -> Task<void> {
    co_await c.send_buffered(1e6);
    tb = sim.now();
    co_await c.send_delivered(1e6);
    td = sim.now();
  };
  w.sim.spawn(prog(w.sim, ch, t_buffered, t_delivered));
  w.sim.run_until(60_s);
  EXPECT_GE(t_buffered, 0);
  EXPECT_GT(t_delivered, t_buffered);
  EXPECT_GE(t_delivered, 5800_us);
}

TEST(Tcp, IdleDecayShrinksWindow) {
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  // Ramp up with a long transfer.
  ch.send(128e6, nullptr, nullptr);
  w.sim.run_until(30_s);
  const double ramped = ch.cwnd();
  EXPECT_GT(ramped, 1e6);
  // Idle for 10 s, then send again: cwnd must have decayed.
  w.sim.at(40_s, [&] { ch.send(1e6, nullptr, nullptr); });
  w.sim.run_until(40_s);
  EXPECT_LT(ch.cwnd(), ramped / 4);
}

TEST(Tcp, LossStatisticsAccumulate) {
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(w.network, w.a, w.b, k, k, SocketOptions{});
  ch.send(512e6, nullptr, nullptr);
  w.sim.run_until(60_s);
  EXPECT_GT(ch.loss_events(), 1);  // slow-start overshoot + CA probing
  EXPECT_GT(ch.bytes_delivered(), 0);
}

TEST(Tcp, ConnectionFromSelectsDirection) {
  WanPair w;
  KernelTunables k;
  TcpConnection conn(w.network, w.a, w.b, k, k, SocketOptions{});
  EXPECT_EQ(conn.from(w.a).source(), w.a);
  EXPECT_EQ(conn.from(w.a).destination(), w.b);
  EXPECT_EQ(conn.from(w.b).source(), w.b);
  EXPECT_EQ(&conn.a_to_b(), &conn.from(w.a));
}

// Throughput must be monotone (weakly) in buffer size: property sweep.
class BufferSweep : public ::testing::TestWithParam<double> {};

TEST_P(BufferSweep, ThroughputScalesWithWindowUntilLineRate) {
  const double buf = GetParam();
  WanPair w;
  KernelTunables k = KernelTunables::grid_tuned();
  SocketOptions o;
  o.sndbuf = o.rcvbuf = buf;
  TcpChannel ch(w.network, w.a, w.b, k, k, o);
  SimTime done = -1;
  const double bytes = 128e6;
  ch.send(bytes, nullptr, [&] { done = w.sim.now(); });
  w.sim.run_until(300_s);
  ASSERT_GT(done, 0);
  const double rate = bytes / to_seconds(done);
  // Ceiling 1: window-limited rate. Ceiling 2: line rate.
  const double window_limit = buf / to_seconds(2 * 5800_us);
  EXPECT_LE(rate, std::min(window_limit, ethernet_goodput(1e9)) * 1.02);
  // And at least half of the window-limited ceiling is achieved (ramp-up
  // and loss recovery cost the rest).
  EXPECT_GE(rate, std::min(window_limit, ethernet_goodput(1e9)) * 0.4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSweep,
                         ::testing::Values(32e3, 64e3, 128e3, 256e3, 512e3,
                                           1e6, 2e6, 4e6));

}  // namespace
}  // namespace gridsim::tcp
