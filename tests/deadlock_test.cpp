// Regression tests for the engine's no-progress detector and wall-clock
// watchdog (simcore/simulation.hpp).
//
// Before the detector existed, a recv/wait that could never match drained
// the event queue and Simulation::run() simply returned with the blocked
// coroutines still suspended — the wedge was silent and the scenario's
// metrics were quietly wrong. Now run() consults its registered blocked
// reporters and throws DeadlockError naming every blocked operation.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "simcore/check.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {
namespace {

using namespace gridsim::literals;

ImplProfile test_profile() {
  ImplProfile p;
  p.name = "test";
  p.send_overhead = microseconds(2);
  p.recv_overhead = microseconds(2);
  p.eager_threshold = 256 * 1024;
  return p;
}

struct Fixture {
  Simulation sim;
  topo::Grid grid;
  Job job;
  explicit Fixture(int nranks = 4)
      : grid(sim, topo::GridSpec::rennes_nancy(2)),
        job(grid, block_placement(grid, nranks), test_profile(),
            tcp::KernelTunables::grid_tuned()) {}
};

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  return out;
}

TEST(Deadlock, UnmatchableRecvThrowsAndNamesTheOperation) {
  // Abandoning the blocked coroutine frame is the expected outcome here.
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(1, 7);  // rank 1 never sends
  }(f.job.rank(0)));
  try {
    f.sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    ASSERT_EQ(e.blocked().size(), 1u);
    EXPECT_EQ(e.blocked()[0],
              "rank 0: recv(src=1, tag=7) blocked; "
              "0 unexpected message(s) queued");
    // The structured lines are folded into what() for plain loggers too.
    EXPECT_NE(std::string(e.what()).find("recv(src=1, tag=7)"),
              std::string::npos);
  }
}

TEST(Deadlock, WildcardsRenderAsStars) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(kAnySource, kAnyTag);
  }(f.job.rank(2)));
  try {
    f.sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    ASSERT_EQ(e.blocked().size(), 1u);
    EXPECT_NE(e.blocked()[0].find("rank 2: recv(src=*, tag=*)"),
              std::string::npos)
        << e.blocked()[0];
  }
}

TEST(Deadlock, UnmatchedIrecvWaitIsDetected) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  f.sim.spawn([](Rank& r) -> Task<void> {
    Request req = r.irecv(3, 5);  // rank 3 never sends
    (void)co_await r.wait(req);
  }(f.job.rank(1)));
  EXPECT_THROW(f.sim.run(), DeadlockError);
}

TEST(Deadlock, RendezvousSenderAwaitingCtsIsReported) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  // Above the eager threshold: the sender parks on the CTS that the
  // never-posted receive would have produced.
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 512e3, 0);
  }(f.job.rank(0)));
  try {
    f.sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(joined(e.blocked()).find("rendez-vous send awaiting CTS"),
              std::string::npos)
        << joined(e.blocked());
  }
}

TEST(Deadlock, ReportNamesEveryBlockedRank) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(1, 1);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(3, 2);
  }(f.job.rank(2)));
  try {
    f.sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    ASSERT_EQ(e.blocked().size(), 2u);
    EXPECT_NE(joined(e.blocked()).find("rank 0:"), std::string::npos);
    EXPECT_NE(joined(e.blocked()).find("rank 2:"), std::string::npos);
  }
}

TEST(Deadlock, CleanRunStillReturnsNormally) {
  Fixture f;
  double got = 0;
  f.sim.spawn([](Rank& r) -> Task<void> {
    co_await r.send(1, 1000, 3);
  }(f.job.rank(0)));
  f.sim.spawn([](Rank& r, double& out) -> Task<void> {
    out = (co_await r.recv(0, 3)).bytes;
  }(f.job.rank(1), got));
  EXPECT_NO_THROW(f.sim.run());
  EXPECT_EQ(got, 1000);
}

// ---------------------------------------------------------------------------
// Wall-clock watchdog (the `gridsim campaign --timeout-s` mechanism).
// ---------------------------------------------------------------------------

TEST(WallDeadline, ExpiredDeadlineTurnsBlockedRunIntoTimeout) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Fixture f;
  f.sim.set_wall_deadline(std::chrono::steady_clock::now());
  f.sim.spawn([](Rank& r) -> Task<void> {
    (void)co_await r.recv(1, 7);
  }(f.job.rank(0)));
  // Timeout takes precedence over the deadlock diagnosis: once the budget
  // is gone we cannot tell a wedge from slow progress.
  EXPECT_THROW(f.sim.run(), TimeoutError);
}

TEST(WallDeadline, ExpiredDeadlineStopsABusyLoop) {
  [[maybe_unused]] ScopedLeakExemption leak_exemption;
  Simulation sim;
  sim.set_wall_deadline(std::chrono::steady_clock::now());
  sim.spawn([](Simulation* s) -> Task<void> {
    for (;;) co_await s->delay(nanoseconds(100));
  }(&sim));
  EXPECT_THROW(sim.run(), TimeoutError);
}

TEST(WallDeadline, ClearDisarmsTheWatchdog) {
  Simulation sim;
  sim.set_wall_deadline(std::chrono::steady_clock::now());
  sim.clear_wall_deadline();
  int steps = 0;
  // Cross several 16384-event check boundaries to prove the disarm held.
  sim.spawn([](Simulation* s, int* n) -> Task<void> {
    for (int i = 0; i < 40'000; ++i) {
      co_await s->delay(nanoseconds(10));
      ++*n;
    }
  }(&sim, &steps));
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(steps, 40'000);
}

}  // namespace
}  // namespace gridsim::mpi
