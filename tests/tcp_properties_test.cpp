// Property-style tests of the TCP model: invariants that must hold across
// parameter ranges (throughput bounds, monotonicity, loss behaviour,
// Reno vs BIC, fairness between concurrent connections).
#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/packet_sim.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::tcp {
namespace {

using namespace gridsim::literals;

struct Path {
  Simulation sim;
  net::Network network{sim};
  net::HostId a, b;
  Path(double capacity_bps, SimTime one_way, double queue) {
    a = network.add_host("a");
    b = network.add_host("b");
    const auto l = network.add_link("l", ethernet_goodput(capacity_bps),
                                    one_way, queue);
    network.add_route(a, b, {l});
  }
};

double transfer_mbps(double capacity_bps, SimTime one_way, double bytes,
                     const KernelTunables& k, SocketOptions o = {},
                     SimTime horizon = seconds(600)) {
  Path p(capacity_bps, one_way, 1e6);
  TcpChannel ch(p.network, p.a, p.b, k, k, o);
  SimTime done = -1;
  ch.send(bytes, nullptr, [&] { done = p.sim.now(); });
  p.sim.run_until(horizon);
  if (done < 0) return 0;
  return bytes * 8 / to_seconds(done) / 1e6;
}

// Throughput never exceeds min(line rate, window/RTT), for any RTT.
class RttSweep : public ::testing::TestWithParam<int> {};

TEST_P(RttSweep, ThroughputRespectsWindowBound) {
  const SimTime one_way = milliseconds(GetParam());
  KernelTunables k;  // default: window bounded by 174760
  const double mbps = transfer_mbps(1e9, one_way, 64e6, k);
  ASSERT_GT(mbps, 0);
  const double window_bound =
      174760 * 8 / to_seconds(2 * one_way) / 1e6;
  const double line = ethernet_goodput(1e9) * 8 / 1e6;
  EXPECT_LE(mbps, std::min(window_bound, line) * 1.01) << "one_way ms: "
                                                       << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rtts, RttSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 50, 100));

// Throughput is (weakly) monotone in RTT: longer paths are never faster.
TEST(TcpProperties, ThroughputMonotoneInRtt) {
  KernelTunables k = KernelTunables::grid_tuned();
  double prev = 1e18;
  for (int ms : {1, 5, 10, 25, 50}) {
    const double mbps = transfer_mbps(1e9, milliseconds(ms), 64e6, k);
    EXPECT_LE(mbps, prev * 1.02) << ms;
    prev = mbps;
  }
}

// Loss never occurs when the window cannot exceed the path BDP.
TEST(TcpProperties, NoLossWhenWindowBelowBdp) {
  Path p(1e9, 10_ms, 1e6);  // BDP ~ 2.35 MB
  KernelTunables k;         // window cap 174 kB << BDP
  TcpChannel ch(p.network, p.a, p.b, k, k, {});
  ch.send(256e6, nullptr, nullptr);
  p.sim.run_until(60_s);
  EXPECT_EQ(ch.loss_events(), 0);
}

// BIC and CUBIC recover faster than Reno from the same loss pattern.
TEST(TcpProperties, BicAndCubicFasterThanRenoOnLongPaths) {
  auto run_algo = [](CongestionAlgo algo) {
    KernelTunables k = KernelTunables::grid_tuned();
    k.algo = algo;
    return transfer_mbps(1e9, 10_ms, 512e6, k);
  };
  const double bic = run_algo(CongestionAlgo::kBic);
  const double reno = run_algo(CongestionAlgo::kReno);
  const double cubic = run_algo(CongestionAlgo::kCubic);
  EXPECT_GE(bic, reno);
  EXPECT_GE(cubic, reno);
}

// Two concurrent tuned connections share the bottleneck roughly fairly.
TEST(TcpProperties, ConcurrentConnectionsShareFairly) {
  Simulation sim;
  net::Network n(sim);
  const auto a1 = n.add_host("a1");
  const auto a2 = n.add_host("a2");
  const auto b = n.add_host("b");
  const auto u1 = n.add_link("u1", ethernet_goodput(1e9), 100_us, 1e6);
  const auto u2 = n.add_link("u2", ethernet_goodput(1e9), 100_us, 1e6);
  const auto wan = n.add_link("wan", ethernet_goodput(1e9), 5_ms, 1e6);
  n.add_route(a1, b, {u1, wan});
  n.add_route(a2, b, {u2, wan});
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel c1(n, a1, b, k, k, {});
  TcpChannel c2(n, a2, b, k, k, {});
  SimTime d1 = -1, d2 = -1;
  c1.send(256e6, nullptr, [&] { d1 = sim.now(); });
  c2.send(256e6, nullptr, [&] { d2 = sim.now(); });
  sim.run_until(120_s);
  ASSERT_GT(d1, 0);
  ASSERT_GT(d2, 0);
  // Equal transfers on symmetric paths finish within 25% of each other.
  const double ratio = to_seconds(d1) / to_seconds(d2);
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.33);
}

// Pacing never hurts: paced completion <= unpaced completion for bulk.
class PacingSweep : public ::testing::TestWithParam<double> {};

TEST_P(PacingSweep, PacingNeverSlower) {
  const double bytes = GetParam();
  KernelTunables k = KernelTunables::grid_tuned();
  SocketOptions paced;
  paced.pacing = true;
  const double with = transfer_mbps(1e9, 5800_us, bytes, k, paced);
  const double without = transfer_mbps(1e9, 5800_us, bytes, k, {});
  EXPECT_GE(with, without * 0.99) << bytes;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacingSweep,
                         ::testing::Values(1e6, 16e6, 64e6, 256e6));

// The bigger of two sequential sends on one channel cannot finish before
// the smaller that was queued first (FIFO of the segment pipeline).
TEST(TcpProperties, SegmentPipelineFifo) {
  Path p(1e9, 5_ms, 1e6);
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(p.network, p.a, p.b, k, k, {});
  std::vector<SimTime> done;
  for (double bytes : {10e6, 1e3, 5e6})
    ch.send(bytes, nullptr, [&] { done.push_back(p.sim.now()); });
  p.sim.run_until(60_s);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
}

// Window accessor consistency: window() == min(cwnd, sndbuf, rcvbuf).
TEST(TcpProperties, WindowAccessorConsistent) {
  Path p(1e9, 5_ms, 1e6);
  KernelTunables k;
  SocketOptions o;
  o.sndbuf = 60e3;
  o.rcvbuf = 80e3;
  TcpChannel ch(p.network, p.a, p.b, k, k, o);
  EXPECT_DOUBLE_EQ(ch.window(),
                   std::min({ch.cwnd(), ch.effective_sndbuf(),
                             ch.effective_rcvbuf()}));
  ch.send(64e6, nullptr, nullptr);
  p.sim.run_until(10_s);
  EXPECT_LE(ch.window(), 60e3);  // clamped to the smaller buffer
}

// A packet-sim config that cannot lose packets on its own: the droptail
// queue is deeper than the whole window, so every loss is an injected one.
PacketSimConfig lossless_config() {
  PacketSimConfig cfg;
  cfg.queue_packets = 5000;
  cfg.window_limit_bytes = 4e6;  // 2762 packets << queue
  return cfg;
}

// With deterministic, well-separated injected losses, every loss is
// recovered by exactly one fast retransmit: retransmits == losses ==
// injected drops, and the RTO never fires.
TEST(PacketTcpProperties, RetransmitCountMatchesInjectedLosses) {
  const double bytes = 4e6;  // 2763 packets
  PacketSimConfig cfg = lossless_config();
  const auto clean = packet_level_transfer(bytes, cfg);
  ASSERT_EQ(clean.losses, 0);
  ASSERT_EQ(clean.retransmits, 0);

  cfg.forced_drops = {100, 400, 800, 1200};
  const auto res = packet_level_transfer(bytes, cfg);
  EXPECT_EQ(res.losses, 4);
  EXPECT_EQ(res.retransmits, 4);
  EXPECT_EQ(res.rto_timeouts, 0);
  EXPECT_EQ(res.retransmit_drops, 0);
  // Losses cost time (halved windows must regrow), but rto_timeouts == 0
  // above already guarantees none of it was spent waiting on the timer.
  EXPECT_GT(res.completion, clean.completion);
}

// Completion time is (weakly) monotone in the socket-buffer bound: a
// larger window never makes a lossless transfer slower.
TEST(PacketTcpProperties, CompletionMonotoneInWindowLimit) {
  const double bytes = 8e6;
  SimTime prev = kSimTimeNever;
  for (double window : {128e3, 256e3, 512e3, 1e6, 2e6, 4e6}) {
    PacketSimConfig cfg = lossless_config();
    cfg.window_limit_bytes = window;
    const auto res = packet_level_transfer(bytes, cfg);
    ASSERT_GT(res.completion, 0) << window;
    EXPECT_EQ(res.losses, 0) << window;
    EXPECT_LE(res.completion, prev) << window;
    prev = res.completion;
  }
}

// Delivered byte accounting matches what was sent.
TEST(TcpProperties, DeliveredBytesAccounting) {
  Path p(1e9, 1_ms, 1e6);
  KernelTunables k = KernelTunables::grid_tuned();
  TcpChannel ch(p.network, p.a, p.b, k, k, {});
  double sent = 0;
  for (double b : {1e3, 2e6, 512.0, 8e6}) {
    sent += b;
    ch.send(b, nullptr, [] {});
  }
  p.sim.run();
  EXPECT_NEAR(ch.bytes_delivered(), sent, 1.0);
}

}  // namespace
}  // namespace gridsim::tcp
