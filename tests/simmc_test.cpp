// End-to-end tests for the DPOR-lite ordering model-checker (simmc/mc.hpp):
// exploration coverage, digest stability and divergence detection, deadlock
// witnesses, minimization, and the witness file round-trip that backs
// `gridsim replay`.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "scenarios/catalog.hpp"
#include "simmc/mc.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::simmc {
namespace {

/// The acceptance workload: two concurrent senders into one rank's pair of
/// kAnySource receives. Both matching orders are legal; `metric` selects
/// whether the result is order-invariant ("sum") or deliberately
/// order-dependent ("first_src", to prove divergence is caught).
harness::ScenarioSpec two_sender_spec(const std::string& metric) {
  harness::ScenarioSpec spec;
  spec.name = "test/two-sender-" + metric;
  spec.group = "test";
  spec.description = "2 racing senders into one wildcard receiver";
  spec.ranks = 3;
  spec.run = [metric](const harness::ScenarioContext& ctx) {
    Simulation sim;
    if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
    mpi::Job job(grid, mpi::block_placement(grid, 3), profiles::mpich2(),
                 tcp::KernelTunables::grid_tuned());
    double sum = 0;
    int first_src = -1;
    job.launch([&](mpi::Rank& r) -> Task<void> {
      if (r.rank() == 0) {
        const mpi::RecvInfo a = co_await r.recv(mpi::kAnySource, 1);
        const mpi::RecvInfo b = co_await r.recv(mpi::kAnySource, 1);
        first_src = a.source;
        sum = a.bytes + b.bytes;
      } else {
        co_await r.send(0, 100.0 * r.rank(), 1);
      }
    });
    sim.run();
    if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
    harness::ScenarioResult res;
    if (metric == "sum")
      res.add("sum", sum);
    else
      res.add("first_src", first_src);
    return res;
  };
  return spec;
}

TEST(Simmc, ExploresBothOrdersOfATwoSenderRace) {
  const McReport report = explore(two_sender_spec("sum"), {});
  EXPECT_EQ(report.status, "ok") << report.detail;
  // Two distinct interleavings at least: arrival order and the flip. (The
  // second receive's "choice" is forced, so 2 is also the exact count.)
  EXPECT_GE(report.executions, 2);
  EXPECT_EQ(report.race_points, 1);
  EXPECT_EQ(report.max_candidates, 2);
  ASSERT_EQ(report.digests.size(), 1u);
}

TEST(Simmc, DetectsAnOrderDependentResult) {
  const McReport report = explore(two_sender_spec("first_src"), {});
  EXPECT_EQ(report.status, "digest-divergence") << report.detail;
  EXPECT_EQ(report.digests.size(), 2u);
  EXPECT_FALSE(report.ok());
}

TEST(Simmc, ScriptedArbiterForcesAndRecordsTheMatch) {
  const harness::ScenarioSpec spec = two_sender_spec("sum");
  const ExecutionRecord base = run_scripted(spec, {}, 1);
  const ExecutionRecord flipped = run_scripted(spec, {1}, 1);
  ASSERT_FALSE(base.deadlocked);
  ASSERT_FALSE(flipped.deadlocked);
  ASSERT_GE(base.trace.size(), 1u);
  ASSERT_EQ(base.trace[0].candidates.size(), 2u);
  EXPECT_EQ(base.trace[0].chosen, 0u);
  EXPECT_EQ(flipped.trace[0].chosen, 1u);
  // Same candidates, different pick, same invariant digest.
  EXPECT_NE(base.trace[0].candidates[0].src_rank,
            base.trace[0].candidates[1].src_rank);
  EXPECT_EQ(base.digest, flipped.digest);
}

TEST(Simmc, EveryCatalogMcScenarioIsDigestStable) {
  // The tentpole assertion over the registered catalog: any legal message
  // schedule, same answer. The deadlock fixture is asserted separately.
  const auto& reg = scenarios::paper_registry();
  int explored = 0;
  for (const auto& spec : reg.scenarios()) {
    if (spec.group != "mc" || spec.name == "mc/deadlock-fixture") continue;
    const McReport report = explore(spec, {});
    EXPECT_EQ(report.status, "ok") << spec.name << ": " << report.detail;
    EXPECT_LE(report.digests.size(), 1u) << spec.name;
    // No mc/* send causally depends on a wildcard match outcome (simlint
    // R2), so the quiescent candidate sets were provably maximal and "same
    // answer under any schedule" is a verified claim, not an assumption.
    EXPECT_TRUE(report.complete) << spec.name << ": " << report.detail;
    ++explored;
  }
  EXPECT_EQ(explored, 10);
}

TEST(Simmc, PingpongWildStaysWithinSixExecutions) {
  // Acceptance pin for the HB persistent sets: the 3-sender wildcard
  // ping-pong has 3! = 6 legal matching orders, all HB-concurrent, so the
  // reduction must not prune any of them — and must not add any either.
  const auto* spec =
      scenarios::paper_registry().find("mc/pingpong-wild-MPICH2");
  ASSERT_NE(spec, nullptr);
  const McReport report = explore(*spec, {});
  EXPECT_EQ(report.status, "ok") << report.detail;
  EXPECT_LE(report.executions, 6);
  EXPECT_EQ(report.hb_pruned, 0);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.digests.size(), 1u);
}

TEST(Simmc, HbPersistentSetsPruneOnlyOrderedBranches) {
  // The race-free twin: its two candidate sends are HB-ordered through a
  // token, so the HB reduction collapses the exploration to one execution
  // while leaving the digest set untouched. --no-hb restores the
  // exhaustive search.
  const auto* spec =
      scenarios::paper_registry().find("lint/scripted-order");
  ASSERT_NE(spec, nullptr);
  McOptions without_hb;
  without_hb.hb_sets = false;
  const McReport on = explore(*spec, {});
  const McReport off = explore(*spec, without_hb);
  EXPECT_EQ(on.status, "ok") << on.detail;
  EXPECT_EQ(off.status, "ok") << off.detail;
  EXPECT_EQ(on.digests, off.digests);  // identical coverage
  EXPECT_LT(on.executions, off.executions);
  EXPECT_GE(on.hb_pruned, 1);
  EXPECT_EQ(off.hb_pruned, 0);
}

/// A send that only becomes enabled after a wildcard match: rank 1's
/// second message waits for rank 0's ack of the first wildcard match.
/// This is exactly the shape for which quiescence-computed candidate sets
/// can be incomplete, so the checker must say "verified-incomplete".
harness::ScenarioSpec causal_relay_spec() {
  harness::ScenarioSpec spec;
  spec.name = "test/causal-relay";
  spec.group = "test";
  spec.description = "a send enabled only after a wildcard match";
  spec.ranks = 3;
  spec.run = [](const harness::ScenarioContext& ctx) {
    Simulation sim;
    if (ctx.hooks.on_start) ctx.hooks.on_start(sim);
    topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
    mpi::Job job(grid, mpi::block_placement(grid, 3), profiles::mpich2(),
                 tcp::KernelTunables::grid_tuned());
    double sum = 0;
    job.launch([&](mpi::Rank& r) -> Task<void> {
      if (r.rank() == 0) {
        const mpi::RecvInfo a = co_await r.recv(mpi::kAnySource, 1);
        co_await r.send(1, 64, 2);  // enables rank 1's second send
        const mpi::RecvInfo b = co_await r.recv(mpi::kAnySource, 1);
        const mpi::RecvInfo c = co_await r.recv(mpi::kAnySource, 1);
        sum = a.bytes + b.bytes + c.bytes;
      } else if (r.rank() == 1) {
        co_await r.send(0, 100, 1);
        (void)co_await r.recv(0, 2);
        co_await r.send(0, 50, 1);
      } else {
        co_await r.send(0, 200, 1);
      }
    });
    sim.run();
    if (ctx.hooks.on_finish) ctx.hooks.on_finish(sim);
    harness::ScenarioResult res;
    res.add("sum", sum);
    return res;
  };
  return spec;
}

TEST(Simmc, CausallyDependentSendsDowngradeToVerifiedIncomplete) {
  const McReport report = explore(causal_relay_spec(), {});
  EXPECT_EQ(report.status, "ok") << report.detail;
  EXPECT_FALSE(report.complete);
  EXPECT_GE(report.causal_sends, 1);
  EXPECT_NE(report.detail.find("verified-incomplete"), std::string::npos)
      << report.detail;
  // The result itself is still interleaving-invariant.
  EXPECT_LE(report.digests.size(), 1u);
}

TEST(Simmc, DeadlockFixtureYieldsTheMinimalWitness) {
  const auto* spec =
      scenarios::paper_registry().find("mc/deadlock-fixture");
  ASSERT_NE(spec, nullptr);
  const McReport report = explore(*spec, {});
  ASSERT_EQ(report.status, "deadlock") << report.detail;
  // Minimized to the single forced choice: the wildcard takes the WAN
  // sender's message instead of the LAN sender's.
  EXPECT_EQ(report.witness.choices, (std::vector<std::size_t>{1}));
  ASSERT_FALSE(report.witness.blocked.empty());
  EXPECT_NE(report.witness.blocked[0].find("recv(src=2, tag=1)"),
            std::string::npos)
      << report.witness.blocked[0];
}

TEST(Simmc, WitnessRoundTripsAndReplaysDeterministically) {
  const auto* spec =
      scenarios::paper_registry().find("mc/deadlock-fixture");
  ASSERT_NE(spec, nullptr);
  const McReport report = explore(*spec, {});
  ASSERT_EQ(report.status, "deadlock");

  const std::string path =
      testing::TempDir() + "simmc_witness_roundtrip.witness";
  ASSERT_TRUE(report.witness.save(path));
  Witness loaded;
  std::string error;
  ASSERT_TRUE(Witness::load(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.scenario, report.witness.scenario);
  EXPECT_EQ(loaded.seed, report.witness.seed);
  EXPECT_EQ(loaded.choices, report.witness.choices);
  EXPECT_EQ(loaded.blocked, report.witness.blocked);

  // `gridsim replay` semantics: every replay of the witness deadlocks with
  // an identical blocked report.
  const ExecutionRecord first =
      run_scripted(*spec, loaded.choices, loaded.seed);
  const ExecutionRecord second =
      run_scripted(*spec, loaded.choices, loaded.seed);
  ASSERT_TRUE(first.deadlocked);
  ASSERT_TRUE(second.deadlocked);
  EXPECT_EQ(first.blocked, second.blocked);
  EXPECT_EQ(first.blocked, loaded.blocked);
  std::remove(path.c_str());
}

TEST(Simmc, WitnessLoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "simmc_witness_garbage";
  {
    std::ofstream out(path);
    out << "not a witness\n";
  }
  Witness w;
  std::string error;
  EXPECT_FALSE(Witness::load(path, &w, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
  EXPECT_FALSE(Witness::load(path + ".missing", &w, &error));
}

TEST(Simmc, ResultDigestIsOrderInsensitiveAndValueSensitive) {
  harness::ScenarioResult a, b, c;
  a.add("x", 1.0).add("y", 2.0);
  b.add("y", 2.0).add("x", 1.0);  // same metrics, different order
  c.add("x", 1.0).add("y", 2.5);
  EXPECT_EQ(result_digest(a), result_digest(b));
  EXPECT_NE(result_digest(a), result_digest(c));
}

}  // namespace
}  // namespace gridsim::simmc
