// Tests for MPI_Probe/Iprobe and the Bruck alltoall algorithm.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "collectives/collectives.hpp"
#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/simulation.hpp"
#include "topology/grid5000.hpp"

namespace gridsim::mpi {
namespace {

using namespace gridsim::literals;

struct Fixture {
  Simulation sim;
  topo::Grid grid;
  Job job;
  Fixture()
      : grid(sim, topo::GridSpec::rennes_nancy(2)),
        job(grid, block_placement(grid, 4), profiles::mpich2(),
            tcp::KernelTunables::grid_tuned()) {}
};

Task<void> sender_two(Rank& r) {
  co_await r.send(1, 1000, 5);
  co_await r.send(1, 2000, 6);
}

Task<void> probing_receiver(Rank& r, std::vector<RecvInfo>* seen,
                            std::vector<double>* received) {
  // Probe for tag 6 specifically, then consume both in tag order.
  seen->push_back(co_await r.probe(0, 6));
  received->push_back((co_await r.recv(0, 6)).bytes);
  received->push_back((co_await r.recv(0, 5)).bytes);
}

TEST(Probe, ProbeSeesWithoutConsuming) {
  Fixture f;
  std::vector<RecvInfo> seen;
  std::vector<double> received;
  f.sim.spawn(sender_two(f.job.rank(0)));
  f.sim.spawn(probing_receiver(f.job.rank(1), &seen, &received));
  f.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].tag, 6);
  EXPECT_DOUBLE_EQ(seen[0].bytes, 2000);
  // Both messages still receivable after the probe.
  EXPECT_EQ(received, (std::vector<double>{2000, 1000}));
}

Task<void> iprobe_receiver(Rank& r, bool* before, bool* after) {
  *before = r.iprobe(0, 9);
  (void)co_await r.probe(0, 9);  // wait until it lands
  RecvInfo info;
  *after = r.iprobe(0, 9, &info) && info.bytes == 512;
  (void)co_await r.recv(0, 9);
}

TEST(Probe, IprobeNonBlocking) {
  Fixture f;
  bool before = true, after = false;
  f.sim.spawn(iprobe_receiver(f.job.rank(1), &before, &after));
  f.sim.at(10_ms, [&f] {
    f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(1, 512, 9); }(
        f.job.rank(0)));
  });
  f.sim.run();
  EXPECT_FALSE(before);  // nothing there at t=0
  EXPECT_TRUE(after);
}

Task<void> any_source_prober(Rank& r, int* seen_src) {
  const RecvInfo info = co_await r.probe(kAnySource, kAnyTag);
  *seen_src = info.source;
  (void)co_await r.recv(info.source, info.tag);
}

TEST(Probe, WildcardProbe) {
  Fixture f;
  int seen_src = -1;
  f.sim.spawn(any_source_prober(f.job.rank(0), &seen_src));
  f.sim.spawn([](Rank& r) -> Task<void> { co_await r.send(0, 64, 3); }(
      f.job.rank(2)));
  f.sim.run();
  EXPECT_EQ(seen_src, 2);
}

// --- Bruck ---------------------------------------------------------------

Task<void> timed_alltoall(Rank& r, int iters, double bytes, SimTime* out) {
  for (int i = 0; i < iters; ++i) co_await coll::alltoall(r, bytes);
  *out = r.sim().now();
}

SimTime run_alltoall(const char* algo, double bytes,
                     TrafficStats* stats = nullptr) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(8));
  ImplProfile p;
  p.eager_threshold = 1e12;
  p.collectives.selector = {CollRule{.op = CollOp::kAlltoall, .algo = algo}};
  Job job(grid, block_placement(grid, 16), p,
          tcp::KernelTunables::grid_tuned());
  std::vector<SimTime> finish(16, 0);
  for (int r = 0; r < 16; ++r)
    sim.spawn(timed_alltoall(job.rank(r), 10, bytes,
                             &finish[static_cast<size_t>(r)]));
  sim.run();
  if (stats) *stats = job.traffic();
  return *std::max_element(finish.begin(), finish.end());
}

TEST(Bruck, FewerMessagesThanPairwise) {
  TrafficStats bruck, pairwise;
  run_alltoall("bruck", 64, &bruck);
  run_alltoall("pairwise", 64, &pairwise);
  // log2(16) = 4 rounds vs 15 steps.
  EXPECT_LT(bruck.collective_messages, pairwise.collective_messages / 2);
}

TEST(Bruck, WinsForTinyPayloadsLosesForLarge) {
  // Tiny payloads: latency dominates, fewer rounds win.
  EXPECT_LT(run_alltoall("bruck", 8), run_alltoall("pairwise", 8));
  // Large payloads: Bruck forwards each byte log2(p)/2 times on average.
  EXPECT_GT(run_alltoall("bruck", 256e3), run_alltoall("pairwise", 256e3));
}

}  // namespace
}  // namespace gridsim::mpi
