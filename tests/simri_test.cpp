// Tests for the Simri MRI-simulator application model (paper Section
// 2.2.2): near-perfect efficiency on a cluster, communication fraction
// shrinking with object size.
#include <gtest/gtest.h>

#include "apps/simri.hpp"
#include "profiles/profiles.hpp"

namespace gridsim::apps {
namespace {

profiles::ExperimentConfig cfg() {
  return profiles::experiment(profiles::mpich2())
      .tuning(profiles::TuningLevel::kDefault);
}

TEST(Simri, EightNodeClusterEfficiencyNear100Percent) {
  // The paper: 8 nodes (master + 7 slaves), efficiency ~100% -- the
  // computation takes seven times less than on one node.
  const auto res =
      run_simri(topo::GridSpec::single_cluster(8), 8, cfg(), SimriConfig{});
  EXPECT_GT(res.efficiency, 0.95);
  EXPECT_LE(res.efficiency, 1.01);
  EXPECT_NEAR(res.speedup, 7.0, 0.4);
}

TEST(Simri, CommunicationFractionSmallAt256) {
  // The paper: sync + communication only ~1.5% of total for objects of at
  // least 256x256.
  SimriConfig app;
  app.object_n = 256;
  const auto res = run_simri(topo::GridSpec::single_cluster(8), 8, cfg(), app);
  EXPECT_LT(res.comm_fraction, 0.03);
}

TEST(Simri, CommunicationFractionGrowsForSmallObjects) {
  SimriConfig small;
  small.object_n = 32;
  SimriConfig big;
  big.object_n = 512;
  const auto rs = run_simri(topo::GridSpec::single_cluster(8), 8, cfg(), small);
  const auto rb = run_simri(topo::GridSpec::single_cluster(8), 8, cfg(), big);
  EXPECT_GT(rs.comm_fraction, rb.comm_fraction);
}

TEST(Simri, ScalesAcrossNodeCounts) {
  double prev_total = 1e300;
  for (int nodes : {3, 5, 8}) {
    const auto res =
        run_simri(topo::GridSpec::single_cluster(8), nodes, cfg(),
                  SimriConfig{});
    EXPECT_GT(res.total_time, 0);
    EXPECT_LT(to_seconds(res.total_time), prev_total);
    prev_total = to_seconds(res.total_time);
  }
}

TEST(Simri, InvalidConfigsThrow) {
  EXPECT_THROW(run_simri(topo::GridSpec::single_cluster(8), 1, cfg()),
               std::invalid_argument);
  EXPECT_THROW(run_simri(topo::GridSpec::single_cluster(2), 4, cfg()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsim::apps
