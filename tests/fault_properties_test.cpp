// Property-based robustness suite for the simfault subsystem (stress label).
//
// Instead of hand-picked fault scenarios, these tests draw dozens of random
// fault schedules from seeded Rngs and assert properties every schedule must
// satisfy:
//
//  * no stuck simulation — every run drains within a generous virtual-time
//    watchdog, whatever the injectors did to the links;
//  * completion once faults clear — every message of a 2-rank echo workload
//    is delivered under all four implementation profiles (byte conservation
//    inside TcpChannel is enforced by its always-on GRIDSIM_CHECKs, which
//    abort the binary on violation);
//  * determinism — the same seed reproduces the same per-message completion
//    times, and the packet-level loss models reproduce identical transfers;
//  * loss only delays — a lossy packet-level transfer never finishes before
//    the loss-free baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "profiles/profiles.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simfault/injector.hpp"
#include "simtcp/packet_sim.hpp"
#include "topology/grid5000.hpp"

namespace gridsim {
namespace {

using profiles::TuningLevel;

// A fault-collapsed flow crawls and recovers on stall backoff; 600 virtual
// seconds is two orders of magnitude beyond the slowest legitimate finish
// for this workload, so hitting the watchdog means the simulation wedged.
constexpr SimTime kWatchdog = seconds(600);

/// Random but bounded fault plan: every horizon is finite so a run can
/// always terminate; roughly half the knobs stay off in any given draw so
/// the suite also covers partial plans and the all-quiet case.
simfault::FaultPlan random_plan(std::uint64_t seed) {
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  simfault::FaultPlan plan;
  plan.seed = seed * 1009 + 17;
  if (rng.uniform() < 0.5) {
    plan.jitter.amplitude = rng.uniform(0.05, 0.4);
    plan.jitter.period = milliseconds(rng.uniform_int(20, 80));
    plan.jitter.stop_after = seconds(5);
  }
  if (rng.uniform() < 0.5) {
    plan.flap.down_at = milliseconds(rng.uniform_int(0, 2000));
    plan.flap.down_for = milliseconds(rng.uniform_int(50, 1500));
    plan.flap.repeats = static_cast<int>(rng.uniform_int(1, 3));
    plan.flap.repeat_every =
        plan.flap.down_for + milliseconds(rng.uniform_int(500, 2000));
  }
  if (rng.uniform() < 0.5) {
    plan.loss_episodes.rate_per_s = rng.uniform(0.5, 4.0);
    plan.loss_episodes.duration = milliseconds(rng.uniform_int(10, 60));
    plan.loss_episodes.stop_after = seconds(5);
  }
  plan.cross.flows = static_cast<int>(rng.uniform_int(0, 3));
  plan.cross.stop_after = seconds(3);
  return plan;
}

/// Echo message sizes for one schedule: 8 messages of 128-200 kB, so each
/// run straddles the eager/rendez-vous switch region and several fault
/// episodes without getting expensive.
std::vector<double> random_sizes(std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> sizes;
  for (int i = 0; i < 8; ++i)
    sizes.push_back(static_cast<double>(rng.uniform_int(128'000, 200'000)));
  return sizes;
}

struct EchoOutcome {
  int delivered = 0;              ///< round trips completed at rank 0
  std::vector<SimTime> completions;
  SimTime finished_at = 0;        ///< last delivery
  int live_processes = 0;         ///< coroutines still suspended at watchdog
  int degraded_events = 0;        ///< TCP stall/retry events surfaced by mpi
};

Task<void> echo_ping(mpi::Rank& r, const std::vector<double>* sizes,
                     std::vector<SimTime>* completions) {
  for (double s : *sizes) {
    co_await r.send(1, s, 0);
    (void)co_await r.recv(1, 0);
    completions->push_back(r.sim().now());
  }
}

Task<void> echo_pong(mpi::Rank& r, const std::vector<double>* sizes) {
  for (double s : *sizes) {
    (void)co_await r.recv(0, 0);
    co_await r.send(0, s, 0);
  }
}

/// Runs the 2-rank echo across the Rennes--Nancy WAN under `plan`.
EchoOutcome run_echo(const mpi::ImplProfile& impl,
                     const simfault::FaultPlan& plan,
                     const std::vector<double>& sizes) {
  Simulation sim;
  topo::Grid grid(sim, topo::GridSpec::rennes_nancy(2));
  auto faults = topo::install_faults(grid, plan);
  const profiles::ExperimentConfig cfg =
      profiles::experiment(impl).tuning(TuningLevel::kFullyTuned);
  mpi::Job job(grid, {grid.node(0, 0), grid.node(1, 0)}, cfg.profile,
               cfg.kernel);
  EchoOutcome out;
  sim.spawn(echo_ping(job.rank(0), &sizes, &out.completions));
  sim.spawn(echo_pong(job.rank(1), &sizes));
  // The queue may legitimately hold clamped completion-check events past the
  // last delivery, so "done" is judged on coroutines and deliveries, not on
  // queue emptiness.
  sim.run_until(kWatchdog);
  out.delivered = static_cast<int>(out.completions.size());
  out.finished_at = out.completions.empty() ? 0 : out.completions.back();
  out.live_processes = sim.live_processes();
  out.degraded_events = job.degraded_progress_events();
  return out;
}

// ---------------------------------------------------------------------------
// 64 random schedules x all four implementation profiles.
// ---------------------------------------------------------------------------

TEST(FaultProperties, RandomSchedulesNeverWedgeAnyImplementation) {
  const auto impls = profiles::all_implementations();
  ASSERT_EQ(impls.size(), 4u);
  int active_plans = 0;
  long long degraded_total = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto plan = random_plan(seed);
    const auto sizes = random_sizes(seed);
    if (plan.active()) ++active_plans;
    for (const auto& impl : impls) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " impl=" + impl.name);
      const auto out = run_echo(impl, plan, sizes);
      // Progress watchdog: every coroutine ran to completion ...
      EXPECT_EQ(out.live_processes, 0);
      // ... and every message was delivered (completion once faults clear).
      EXPECT_EQ(out.delivered, static_cast<int>(sizes.size()));
      EXPECT_GT(out.finished_at, 0);
      EXPECT_LT(out.finished_at, kWatchdog);
      // Deliveries are causally ordered.
      for (std::size_t i = 1; i < out.completions.size(); ++i)
        EXPECT_LT(out.completions[i - 1], out.completions[i]);
      EXPECT_GE(out.degraded_events, 0);
      degraded_total += out.degraded_events;
    }
  }
  // Guard against vacuity: the draw really does inject faults most of the
  // time, and the flaps are harsh enough that the TCP stall path fires at
  // least somewhere across the suite.
  EXPECT_GE(active_plans, 48);
  EXPECT_GT(degraded_total, 0);
}

// ---------------------------------------------------------------------------
// Same seed, same schedule: per-message completion times reproduce exactly.
// ---------------------------------------------------------------------------

TEST(FaultProperties, SameSeedReproducesCompletionTimes) {
  const auto impls = profiles::all_implementations();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto& impl = impls[seed % impls.size()];
    SCOPED_TRACE("seed=" + std::to_string(seed) + " impl=" + impl.name);
    const auto plan = random_plan(seed);
    const auto sizes = random_sizes(seed);
    const auto a = run_echo(impl, plan, sizes);
    const auto b = run_echo(impl, plan, sizes);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.degraded_events, b.degraded_events);
  }
  // And a different seed moves at least one schedule's outcome.
  const auto base = run_echo(impls[0], random_plan(100), random_sizes(100));
  const auto moved = run_echo(impls[0], random_plan(101), random_sizes(100));
  EXPECT_NE(base.completions, moved.completions);
}

// ---------------------------------------------------------------------------
// Packet-level loss models: 64 random specs, each deterministic, each
// completing, never faster than the loss-free baseline.
// ---------------------------------------------------------------------------

TEST(FaultProperties, PacketLossModelsCompleteDeterministically) {
  constexpr double kBytes = 4e5;
  tcp::PacketSimConfig clean;
  const auto baseline = tcp::packet_level_transfer(kBytes, clean);
  ASSERT_GT(baseline.completion, 0);
  ASSERT_EQ(baseline.injected_losses, 0);

  const int base_packets = static_cast<int>(std::ceil(kBytes / clean.mss));
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919 + 3);
    tcp::PacketSimConfig cfg;
    if (rng.uniform() < 0.5) {
      cfg.loss = simfault::PacketLossSpec::iid(rng.uniform(0.0, 0.08),
                                               seed + 1);
    } else {
      cfg.loss = simfault::PacketLossSpec::gilbert_elliott(
          rng.uniform(0.002, 0.05), rng.uniform(0.1, 0.5),
          rng.uniform(0.1, 0.5), seed + 1);
    }
    const auto a = tcp::packet_level_transfer(kBytes, cfg);
    // The transfer completed: every byte was acked despite the drops.
    EXPECT_GT(a.completion, 0);
    EXPECT_GE(a.packets_sent, base_packets);
    EXPECT_GE(a.losses, a.injected_losses);
    // Loss can only delay, never accelerate.
    EXPECT_GE(a.completion, baseline.completion);
    if (a.injected_losses == 0) {
      EXPECT_EQ(a.completion, baseline.completion);
    }
    // Same spec, same transfer, field for field.
    const auto b = tcp::packet_level_transfer(kBytes, cfg);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.packets_sent, b.packets_sent);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.injected_losses, b.injected_losses);
  }
}

}  // namespace
}  // namespace gridsim
