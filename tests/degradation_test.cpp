// Failure/degradation injection: runtime link-capacity changes and how
// flows and TCP react.
#include <gtest/gtest.h>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::net {
namespace {

using namespace gridsim::literals;

TEST(Degradation, FlowSlowsWhenLinkDegrades) {
  Simulation sim;
  Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l = n.add_link("l", 1e8, 1_ms, 1e6);
  n.add_route(a, b, {l});
  SimTime done = -1;
  n.start_flow(a, b, 1e8, kUnlimitedRate, [&] { done = sim.now(); });
  // Halve the capacity at t = 0.5 s: 50 MB moved, 50 MB left at 50 MB/s.
  sim.at(500_ms, [&] { n.set_link_capacity(l, 5e7); });
  sim.run();
  EXPECT_EQ(done, 1500_ms);
}

TEST(Degradation, RecoveryRestoresRate) {
  Simulation sim;
  Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l = n.add_link("l", 1e8, 1_ms, 1e6);
  n.add_route(a, b, {l});
  SimTime done = -1;
  n.start_flow(a, b, 2e8, kUnlimitedRate, [&] { done = sim.now(); });
  sim.at(500_ms, [&] { n.set_link_capacity(l, 1e7); });  // 10x degradation
  sim.at(1500_ms, [&] { n.set_link_capacity(l, 1e8); });  // recovery
  sim.run();
  // 0.5 s at 100 MB/s (50 MB) + 1 s at 10 MB/s (10 MB) + 1.4 s at 100 MB/s.
  EXPECT_EQ(done, 2900_ms);
}

TEST(Degradation, ZeroCapacityRejected) {
  Simulation sim;
  Network n(sim);
  const auto l = n.add_link("l", 1e8, 1_ms, 1e6);
  EXPECT_THROW(n.set_link_capacity(l, 0), std::invalid_argument);
  EXPECT_THROW(n.set_link_capacity(l, -5), std::invalid_argument);
}

TEST(Degradation, TcpAdaptsToDegradedPath) {
  // A TCP transfer across a link that degrades mid-flight: the connection
  // must still complete, with the window shrinking via losses.
  Simulation sim;
  Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l =
      n.add_link("l", tcp::ethernet_goodput(1e9), 5_ms, 1e6);
  n.add_route(a, b, {l});
  const auto k = tcp::KernelTunables::grid_tuned();
  tcp::TcpChannel ch(n, a, b, k, k, {});
  SimTime done = -1;
  ch.send(256e6, nullptr, [&] { done = sim.now(); });
  sim.at(1_s, [&] { n.set_link_capacity(l, tcp::ethernet_goodput(1e8)); });
  sim.run_until(120_s);
  ASSERT_GT(done, 0);
  // Well slower than the undegraded ~2.4 s, but bounded by the 100 Mbps
  // floor on the remaining bytes.
  EXPECT_GT(done, 5_s);
  EXPECT_LT(done, 40_s);
}

TEST(Degradation, OtherFlowsGainWhenOneThrottled) {
  Simulation sim;
  Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l = n.add_link("l", 1e8, 1_ms, 1e6);
  n.add_route(a, b, {l});
  SimTime d1 = -1, d2 = -1;
  const FlowId f1 =
      n.start_flow(a, b, 1e8, kUnlimitedRate, [&] { d1 = sim.now(); });
  n.start_flow(a, b, 1e8, kUnlimitedRate, [&] { d2 = sim.now(); });
  // Throttle flow 1 at t=0: flow 2 should take the slack.
  n.set_rate_cap(f1, 2e7);
  EXPECT_NEAR(n.flow_info(f1).rate, 2e7, 1);
  sim.run();
  EXPECT_GT(d1, d2);  // throttled flow finishes last
}

}  // namespace
}  // namespace gridsim::net
