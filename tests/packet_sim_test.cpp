// The packet-level TCP reference vs the fluid TcpChannel model: the two
// must agree on transfer times across the regimes the paper cares about.
#include <gtest/gtest.h>

#include <cmath>

#include "simcore/simulation.hpp"
#include "simnet/network.hpp"
#include "simtcp/packet_sim.hpp"
#include "simtcp/tcp.hpp"

namespace gridsim::tcp {
namespace {

using namespace gridsim::literals;

/// Fluid-model transfer time on an equivalent single-link path.
SimTime fluid_transfer(double bytes, double capacity, SimTime one_way,
                       double window_limit) {
  Simulation sim;
  net::Network n(sim);
  const auto a = n.add_host("a");
  const auto b = n.add_host("b");
  const auto l = n.add_link("l", capacity, one_way, 690 * 1448.0);
  n.add_route(a, b, {l});
  KernelTunables k = KernelTunables::grid_tuned();
  SocketOptions o;
  o.sndbuf = o.rcvbuf = window_limit;
  TcpChannel ch(n, a, b, k, k, o);
  SimTime done = -1;
  // Match the packet sim's completion semantics (last byte acked) by
  // adding one more one-way trip after delivery.
  ch.send(bytes, nullptr, [&] { done = sim.now() + one_way; });
  sim.run_until(600_s);
  return done;
}

struct Scenario {
  const char* label;
  double bytes;
  SimTime one_way;
  double window_limit;
  double tolerance;  // allowed relative error fluid vs packet
};

class FluidVsPacket : public ::testing::TestWithParam<Scenario> {};

TEST_P(FluidVsPacket, TransferTimesAgree) {
  const Scenario s = GetParam();
  PacketSimConfig cfg;
  cfg.one_way = s.one_way;
  cfg.window_limit_bytes = s.window_limit;
  const auto packet = packet_level_transfer(s.bytes, cfg);
  const SimTime fluid =
      fluid_transfer(s.bytes, cfg.capacity, s.one_way, s.window_limit);
  ASSERT_GT(packet.completion, 0) << s.label;
  ASSERT_GT(fluid, 0) << s.label;
  const double ratio = to_seconds(fluid) / to_seconds(packet.completion);
  EXPECT_GT(ratio, 1.0 - s.tolerance) << s.label << " packet="
                                      << to_seconds(packet.completion)
                                      << "s fluid=" << to_seconds(fluid);
  EXPECT_LT(ratio, 1.0 + s.tolerance) << s.label << " packet="
                                      << to_seconds(packet.completion)
                                      << "s fluid=" << to_seconds(fluid);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, FluidVsPacket,
    ::testing::Values(
        // Window-limited WAN (the paper's default-tunables regime): both
        // models must give the ~W/RTT rate.
        Scenario{"wan-window-limited", 16e6, 5800_us, 174760, 0.25},
        // Small-buffer WAN, even tighter window.
        Scenario{"wan-tiny-window", 4e6, 5800_us, 64e3, 0.25},
        // LAN: line rate, window irrelevant.
        Scenario{"lan-line-rate", 64e6, 35_us, 4e6, 0.15},
        // Short transfer, latency-dominated.
        Scenario{"wan-short", 64e3, 5800_us, 4e6, 0.35}));

TEST(PacketSim, BasicInvariants) {
  PacketSimConfig cfg;
  cfg.one_way = 1_ms;
  const auto res = packet_level_transfer(1e6, cfg);
  EXPECT_GT(res.completion, 2_ms);  // at least one round trip
  EXPECT_GE(res.packets_sent, 691); // ceil(1e6/1448)
  EXPECT_EQ(res.losses, 0);         // 4 MB window < queue+BDP? no overflow
  EXPECT_GT(res.max_cwnd_packets, 2);
}

TEST(PacketSim, TinyQueueCausesLossesAndRecovery) {
  PacketSimConfig cfg;
  cfg.one_way = 5800_us;
  cfg.queue_packets = 32;           // shallow bottleneck
  cfg.window_limit_bytes = 8e6;     // window allowed to overshoot
  const auto res = packet_level_transfer(32e6, cfg);
  EXPECT_GT(res.losses, 0);
  EXPECT_GT(res.retransmits, 0);
  EXPECT_GT(res.completion, 0);     // still completes
}

TEST(PacketSim, LargerWindowIsFasterUntilLineRate) {
  PacketSimConfig small, large;
  small.one_way = large.one_way = 5800_us;
  small.window_limit_bytes = 128e3;
  large.window_limit_bytes = 2e6;
  const auto s = packet_level_transfer(16e6, small);
  const auto l = packet_level_transfer(16e6, large);
  EXPECT_LT(l.completion, s.completion);
}

/// Constrains the window below queue + BDP so the only losses are the
/// injected ones.
PacketSimConfig no_natural_loss_config() {
  PacketSimConfig cfg;
  cfg.window_limit_bytes = 600 * cfg.mss;  // < 690-packet queue alone
  return cfg;
}

// Regression: a single mid-stream loss is repaired by one fast retransmit.
// The old timer discipline left the pre-recovery RTO armed, so it fired
// mid-recovery, collapsed cwnd to the initial window and retransmitted a
// second copy (retransmits == 2, rto_timeouts == 1 for one loss).
TEST(PacketSim, SingleLossRecoversByFastRetransmitWithoutRtoFiring) {
  PacketSimConfig cfg = no_natural_loss_config();
  const double bytes = 8e6;
  const auto clean = packet_level_transfer(bytes, cfg);
  ASSERT_EQ(clean.losses, 0);

  cfg.forced_drops = {500};
  const auto res = packet_level_transfer(bytes, cfg);
  EXPECT_EQ(res.losses, 1);
  EXPECT_EQ(res.retransmits, 1);
  EXPECT_EQ(res.rto_timeouts, 0);
  EXPECT_EQ(res.retransmit_drops, 0);
  // Fast recovery halves cwnd but must not collapse it to the initial
  // window, and completion must not pay a 200 ms timeout.
  EXPECT_GT(res.max_cwnd_packets, cfg.initial_window_packets + 1);
  EXPECT_GE(res.completion, clean.completion);
  EXPECT_LT(res.completion, clean.completion + cfg.rto);
}

// Losing the very last packet leaves no later packets to generate dup
// acks, so only the (single, re-armed) RTO timer can rescue the transfer.
TEST(PacketSim, TailLossIsRescuedByRto) {
  PacketSimConfig cfg = no_natural_loss_config();
  const double bytes = 4e6;
  const int total = static_cast<int>(std::ceil(bytes / cfg.mss));
  cfg.forced_drops = {total - 1};
  const auto res = packet_level_transfer(bytes, cfg);
  EXPECT_EQ(res.losses, 1);
  EXPECT_EQ(res.rto_timeouts, 1);
  EXPECT_EQ(res.retransmits, 1);
  EXPECT_GT(res.completion, cfg.rto);  // paid exactly one timeout
}

// The engine-facing contract of the timer/ack overhaul: a bulk transfer
// schedules O(packets) events and keeps the pending set window-sized. The
// one-closure-per-ack RTO discipline this replaced scheduled the same
// order of events but kept tens of thousands of dead 200 ms timers live
// in the queue at once.
TEST(PacketSim, EventCountAndQueueDepthStayWindowSized) {
  std::uint64_t events = 0;
  std::size_t peak_depth = 0;
  SimHooks hooks;
  hooks.on_finish = [&](Simulation& sim) {
    events = sim.events_processed();
    peak_depth = sim.peak_queue_depth();
  };
  PacketSimConfig cfg;
  const auto res = packet_level_transfer(64e6, cfg, hooks);
  ASSERT_GT(res.packets_sent, 0);
  EXPECT_LT(events,
            4u * static_cast<std::uint64_t>(res.packets_sent));
  // Window limit is ~2762 packets; each contributes at most a departure
  // and a receive/ack event, plus the single RTO timer.
  EXPECT_LT(peak_depth, 6000u);
}

}  // namespace
}  // namespace gridsim::tcp
