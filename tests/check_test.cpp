// Tests for the runtime invariant subsystem (GRIDSIM_CHECK / GRIDSIM_DCHECK)
// and the engine invariants it guards: event-queue FIFO tiebreak order,
// time monotonicity and schedule-in-the-past rejection.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simcore/check.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"

namespace gridsim {
namespace {

using literals::operator""_us;

TEST(CheckDeath, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(GRIDSIM_CHECK(1 + 1 == 3), "GRIDSIM_CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckDeath, MessageIsFormattedIntoDiagnostic) {
  EXPECT_DEATH(GRIDSIM_CHECK(false, "rank %d out of range", 7),
               "rank 7 out of range");
}

TEST(CheckDeath, LiveSimulationContextIsReported) {
  Simulation sim;
  sim.at(5, [] {});
  // The diagnostic must carry the engine snapshot: sim-time, live-process
  // count and the depth of the pending-event queue.
  EXPECT_DEATH(GRIDSIM_CHECK(false), "sim-time=0 ns.*event-queue-depth=1");
}

TEST(CheckDeath, ScheduleIntoThePastAborts) {
  EventQueue q;
  q.schedule(100, [] {});
  q.schedule(100, [] {});
  EXPECT_EQ(q.run_next(), 100);
  EXPECT_DEATH(q.schedule(99, [] {}), "time travels backwards");
}

TEST(CheckDeath, NullCallbackAborts) {
  EventQueue q;
  EXPECT_DEATH(q.schedule(0, std::function<void()>{}), "null callback");
}

TEST(CheckDeath, RunNextOnEmptyQueueAborts) {
  EventQueue q;
  EXPECT_DEATH(q.run_next(), "empty queue");
}

TEST(Check, PassingCheckHasNoSideEffects) {
  int evaluations = 0;
  GRIDSIM_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

#if defined(GRIDSIM_ENABLE_DCHECKS)
TEST(CheckDeath, DcheckFiresWhenEnabled) {
  EXPECT_DEATH(GRIDSIM_DCHECK(false, "dcheck message"), "dcheck message");
}
#else
TEST(Check, DcheckDoesNotEvaluateWhenDisabled) {
  int evaluations = 0;
  GRIDSIM_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(EventQueueFifo, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueFifo, TiebreakHoldsUnderInterleavedTimestamps) {
  // Property: for any interleaving of insertions, events pop sorted by time,
  // and within one timestamp in insertion order.
  Rng rng(2024);
  EventQueue q;
  struct Fired {
    SimTime at;
    int insertion_index;
  };
  std::vector<Fired> fired;
  std::vector<int> inserted_per_time(4, 0);
  for (int i = 0; i < 200; ++i) {
    const auto slot = static_cast<size_t>(rng.uniform_int(0, 3));
    const SimTime t = 10 * static_cast<SimTime>(slot + 1);
    const int index = inserted_per_time[slot]++;
    q.schedule(t, [&fired, t, index] { fired.push_back({t, index}); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), 200u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].at, fired[i].at);
    if (fired[i - 1].at == fired[i].at) {
      EXPECT_EQ(fired[i - 1].insertion_index + 1, fired[i].insertion_index);
    }
  }
}

TEST(SimulationMonotonicity, AtRejectsTimesInThePast) {
  Simulation sim;
  sim.at(1000, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_THROW(sim.at(999, [] {}), std::logic_error);
  // Scheduling exactly at now() stays legal (post() relies on it).
  EXPECT_NO_THROW(sim.at(1000, [] {}));
}

TEST(SimulationMonotonicity, PostOrdersAfterQueuedEventsAtSameTime) {
  Simulation sim;
  std::vector<int> order;
  sim.at(5_us, [&] {
    order.push_back(1);
    sim.post([&] { order.push_back(3); });
  });
  sim.at(5_us, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(OneShotDeath, DoubleSetAborts) {
  Simulation sim;
  OneShot<int> slot(sim);
  slot.set(1);
  EXPECT_DEATH(slot.set(2), "OneShot::set called twice");
}

}  // namespace
}  // namespace gridsim
